"""Baseline attackers used for comparison (paper §VI-B and §VI-D).

* :class:`RandomAttacker` — the ``Baseline-Random`` attack: a randomly chosen
  target, attack vector, start time, and duration.  It uses the same
  trajectory-hijacking mechanics but neither the scenario matcher nor the
  safety hijacker.
* :class:`RoboTackWithoutSafetyHijacker` — the "R w/o SH" ablation: the
  scenario matcher and trajectory hijacker are used, but the attack starts at
  a random time and lasts a random number of frames (15-85), bypassing the
  safety hijacker's timing decision.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.attack_vectors import AttackVector
from repro.core.robotack import CameraMitmAttackerBase, RoboTackConfig
from repro.core.safety_hijacker import AttackFeatures
from repro.core.scenario_matcher import ScenarioMatcher
from repro.perception.transforms import WorldObjectEstimate
from repro.sim.road import Road

__all__ = ["RandomAttacker", "RoboTackWithoutSafetyHijacker"]

#: Range of random attack durations used by the baselines (paper: K* was
#: randomly picked between 15 and 85 frames).
_RANDOM_K_RANGE = (15, 85)


class RandomAttacker(CameraMitmAttackerBase):
    """Baseline-Random: random target, vector, start time, and duration.

    The target is drawn from all non-ego actors of the scenario (not just the
    objects currently visible to the camera), matching the paper's baseline of
    "randomly chosen non-AV vehicles or pedestrians".  If the chosen actor is
    not visible when the randomly chosen start time arrives, the attack
    episode fizzles without perturbing anything.
    """

    def __init__(
        self,
        road: Road,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
        start_window_frames: tuple[int, int] = (30, 400),
        candidate_target_actor_ids: Sequence[int] | None = None,
    ):
        super().__init__(road, config, rng)
        low, high = start_window_frames
        if low > high:
            raise ValueError("start window must be ordered (low, high)")
        self._start_frame = int(self._rng.integers(low, high + 1))
        self._duration = int(self._rng.integers(_RANDOM_K_RANGE[0], _RANDOM_K_RANGE[1] + 1))
        self._vector = AttackVector(
            self._rng.choice([v.value for v in (config or RoboTackConfig()).allowed_vectors])
        )
        self._chosen_actor_id: Optional[int] = None
        if candidate_target_actor_ids:
            candidates = list(candidate_target_actor_ids)
            self._chosen_actor_id = int(candidates[int(self._rng.integers(0, len(candidates)))])
        self._fizzled = False

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        if self._frame_count < self._start_frame or self._fizzled:
            return None
        candidates = [e for e in estimates if e.distance_m > 0]
        if self._chosen_actor_id is not None:
            candidates = [e for e in candidates if e.actor_id == self._chosen_actor_id]
            if not candidates:
                # The pre-selected actor is not in view at the chosen time: the
                # random attack fires into nothing (one episode per run).
                self._fizzled = True
                return None
        if not candidates:
            return None
        target = candidates[int(self._rng.integers(0, len(candidates)))]
        features = self._features_for(target, ego_speed_mps)
        return self._vector, self._duration, target, features, float("nan")


class RoboTackWithoutSafetyHijacker(CameraMitmAttackerBase):
    """"R w/o SH": scenario matching and trajectory hijacking at a random time."""

    def __init__(
        self,
        road: Road,
        config: RoboTackConfig | None = None,
        rng: np.random.Generator | None = None,
        start_window_frames: tuple[int, int] = (30, 300),
    ):
        super().__init__(road, config, rng)
        low, high = start_window_frames
        if low > high:
            raise ValueError("start window must be ordered (low, high)")
        self._start_frame = int(self._rng.integers(low, high + 1))
        self._duration = int(self._rng.integers(_RANDOM_K_RANGE[0], _RANDOM_K_RANGE[1] + 1))
        self.scenario_matcher = ScenarioMatcher(
            road, self.config.matcher, allowed_vectors=self.config.allowed_vectors
        )

    def _maybe_launch(
        self, estimates: Sequence[WorldObjectEstimate], ego_speed_mps: float
    ) -> Optional[tuple[AttackVector, int, WorldObjectEstimate, Optional[AttackFeatures], float]]:
        if self._frame_count < self._start_frame:
            return None
        target = self._closest_target(estimates)
        if target is None:
            return None
        vector = self.scenario_matcher.match(target)
        if vector is None:
            return None
        features = self._features_for(target, ego_speed_mps)
        return vector, self._duration, target, features, float("nan")

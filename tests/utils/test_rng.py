"""Tests for deterministic random-number management."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_gives_same_stream(self):
        a = make_rng(7)
        b = make_rng(7)
        assert a.random() == b.random()

    def test_different_seeds_give_different_streams(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_seed_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_returns_requested_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_zero_count_allowed(self):
        assert spawn_rngs(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(42, 2)
        assert children[0].random() != children[1].random()

    def test_reproducible_across_calls(self):
        first = [g.random() for g in spawn_rngs(9, 3)]
        second = [g.random() for g in spawn_rngs(9, 3)]
        assert first == second


class TestSeedSequenceFactory:
    def test_spawned_counter_increments(self):
        factory = SeedSequenceFactory(1)
        factory.next_rng()
        factory.next_rngs(2)
        assert factory.spawned == 3

    def test_root_seed_preserved(self):
        assert SeedSequenceFactory(99).root_seed == 99

    def test_same_root_seed_reproduces_streams(self):
        a = SeedSequenceFactory(5).next_rng()
        b = SeedSequenceFactory(5).next_rng()
        assert a.random() == b.random()

    def test_successive_children_differ(self):
        factory = SeedSequenceFactory(5)
        assert factory.next_rng().random() != factory.next_rng().random()

    def test_named_seeds_are_stable_within_factory(self):
        factory = SeedSequenceFactory(11)
        seeds_a = factory.named_seeds(["camera", "lidar"])
        seeds_b = factory.named_seeds(["camera", "lidar"])
        assert seeds_a == seeds_b

    def test_named_seeds_have_expected_keys(self):
        factory = SeedSequenceFactory(11)
        assert set(factory.named_seeds(["a", "b"])) == {"a", "b"}

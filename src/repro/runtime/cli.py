"""The ``repro-campaign`` console entry point.

Runs seeded experiment campaigns from the command line, with parallel
execution (``--jobs``), disk-backed artifact caching (``--cache-dir``),
durable per-run recording (``--store``), and the full scenario catalog
(``--list-scenarios``).  Modes:

* the default reproduces the paper's Table II evaluation: the six RoboTack
  campaigns plus the DS-5 random baseline, printing the reproduced table and
  the §I headline findings;
* ``--scenario DS-6 --attacker robotack --vector disappear`` runs a single
  custom campaign against any registered scenario and prints its summary row;
* ``sweep`` expands a declarative parameter space (``--param`` axes over
  ``variation.*`` / ``simulation.*`` / ``detector.*`` / ``fusion.*``) into
  one campaign per sweep point and records every run in the experiment store;
* ``resume`` finishes every interrupted campaign found in a store — the
  resumed statistics are bit-identical to an uninterrupted run;
* ``search`` runs the closed-loop falsification engine: an adaptive sampler
  (cross-entropy, bandit, or random) steers sweep batches toward the
  attack-success boundary under a fixed simulation budget, checkpointing its
  state in the store so the same command resumes after any crash;

``--fusion POLICY`` (on run, sweep, and resume) selects the fusion-policy
victim variant (late, camera_only, lidar_only, consistency_gated); resume
uses it as a filter over the store's incomplete campaigns.
* ``train`` runs the safety-hijacker training pipeline for one
  (scenario, vector) pair: parallel, resumable dataset collection streamed
  into the store, training of the paper's 100-100-50 oracle, and publication
  into the store's content-addressed model registry — later campaigns against
  the same store load the pretrained oracle instead of retraining.

Examples::

    repro-campaign --runs 30 --jobs 4
    repro-campaign --scenario DS-7 --attacker robotack --vector disappear --jobs -1
    repro-campaign --scenario DS-1 --attacker none --store runs/ --runs 50
    repro-campaign sweep --scenario DS-1 --store runs/ --sampler lhs --n 50 \\
        --param variation.lead_gap_offset_m=-8:8 --param detector.sigma_scale=1:2
    repro-campaign sweep --scenario DS-2 --store runs/ --sampler grid \\
        --param fusion.policy=late,lidar_only,consistency_gated \\
        --param fusion.camera_weight=0.4:0.8:3
    repro-campaign --scenario DS-1 --attacker none --fusion lidar_only --runs 20
    repro-campaign resume --store runs/ --jobs -1
    repro-campaign search --scenario DS-3 --attacker robotack --vector move_out \\
        --store runs/ --sampler ce --budget 300 --batch-points 8 --target 0.9
    repro-campaign train --scenario DS-2 --vector disappear --store runs/ --jobs -1
    repro-campaign --list-scenarios
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


class _TrackedStore(argparse.Action):
    """``store`` action that records which dests the user explicitly set.

    The subcommands re-declare several top-level flag names; knowing which
    top-level flags were *actually typed* (vs merely defaulted) lets main()
    reject the ambiguous ``--runs 10 sweep ...`` form even when the typed
    value coincides with the default.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        _mark_provided(namespace, self.dest)


class _TrackedStoreTrue(argparse.Action):
    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, const=True, default=False, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, True)
        _mark_provided(namespace, self.dest)


def _mark_provided(namespace: argparse.Namespace, dest: str) -> None:
    # The set lives on the namespace (never as a parser default): a default
    # would be one shared instance mutated across parse_args calls.
    provided = getattr(namespace, "_provided", None)
    if provided is None:
        provided = set()
        setattr(namespace, "_provided", provided)
    provided.add(dest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--runs", type=int, default=10, action=_TrackedStore,
                        help="simulation runs per campaign")
    parser.add_argument("--seed", type=int, default=2020, action=_TrackedStore,
                        help="root seed for the campaigns")
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        action=_TrackedStore,
        help="worker processes (0/1 = serial, -1 = all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        action=_TrackedStore,
        help="persist trained predictors and campaign results under this directory",
    )
    parser.add_argument(
        "--store",
        default=None,
        action=_TrackedStore,
        help="experiment-store root: durably record every run and make the "
        "campaign resumable",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        action=_TrackedStore,
        help="run one campaign against this scenario instead of the Table II suite",
    )
    parser.add_argument(
        "--attacker",
        default="robotack",
        action=_TrackedStore,
        help="attacker kind for --scenario mode (robotack, robotack_no_sh, random, none)",
    )
    parser.add_argument(
        "--vector",
        default=None,
        action=_TrackedStore,
        help="attack vector for --scenario mode (disappear, move_out, move_in)",
    )
    parser.add_argument(
        "--predictor",
        default="neural",
        action=_TrackedStore,
        help="safety-potential oracle (neural, kinematic)",
    )
    parser.add_argument(
        "--fusion",
        default=None,
        action=_TrackedStore,
        help="fusion-policy victim variant (late, camera_only, lidar_only, "
        "consistency_gated); default: the scenario's own fusion (late)",
    )
    parser.add_argument(
        "--engine",
        default="scalar",
        choices=("scalar", "batch"),
        action=_TrackedStore,
        help="simulation engine: 'scalar' steps one run at a time, 'batch' "
        "advances --batch-size runs in lockstep per work item (bit-identical "
        "results, composes with --jobs and --store)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        action=_TrackedStore,
        help="lockstep runs per work item when --engine batch",
    )
    parser.add_argument(
        "--no-cache",
        action=_TrackedStoreTrue,
        help="bypass the campaign result cache (predictors are still reused)",
    )
    parser.add_argument(
        "--list-scenarios",
        action=_TrackedStoreTrue,
        help="print the registered scenario catalog and exit",
    )

    subparsers = parser.add_subparsers(dest="command")

    sweep = subparsers.add_parser(
        "sweep",
        help="expand a declarative parameter space into campaigns and run them",
        description=(
            "Expand a parameter space over variation.*, simulation.*, "
            "detector.*, and fusion.* axes into one campaign per sweep "
            "point, execute the batch, and durably record every run in the "
            "experiment store."
        ),
    )
    # Subcommand flags share names with the top-level flags but get their
    # own dests ("sub_*"): argparse would otherwise let the subparser's
    # defaults silently clobber values the user set before the subcommand.
    # main() remaps them after rejecting that ambiguous mixed form outright.
    sweep.add_argument("--scenario", dest="sub_scenario", required=True,
                       help="scenario id to sweep")
    sweep.add_argument("--store", dest="sub_store", required=True,
                       help="experiment-store root")
    sweep.add_argument(
        "--attacker",
        dest="sub_attacker",
        default="none",
        help="attacker kind for every sweep point (default: none = golden runs)",
    )
    sweep.add_argument("--vector", dest="sub_vector", default=None,
                       help="attack vector (robotack modes)")
    sweep.add_argument("--predictor", dest="sub_predictor", default="neural",
                       help="safety oracle kind")
    sweep.add_argument("--fusion", dest="sub_fusion", default=None,
                       help="fusion-policy victim variant for every sweep "
                       "point (fusion.* axes apply on top of it)")
    sweep.add_argument("--runs", dest="sub_runs", type=int, default=3,
                       help="runs per sweep point")
    sweep.add_argument("--seed", dest="sub_seed", type=int, default=2020,
                       help="root seed per campaign")
    sweep.add_argument(
        "--sampler",
        default="lhs",
        choices=("grid", "random", "lhs"),
        help="how to sample the space; 'grid' enumerates the full cartesian "
        "product of the axes' grid points (size it per axis via "
        "low:high:points), ignoring --n/--sweep-seed with a warning",
    )
    sweep.add_argument(
        "--n", type=int, default=None,
        help="number of sweep points for random/lhs (default 50); the grid "
        "sampler's size is the product of its axis grid points and a "
        "mismatching --n only warns",
    )
    sweep.add_argument(
        "--sweep-seed", type=int, default=None,
        help="seed of the space sampler itself (random/lhs; default 0)",
    )
    sweep.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="PATH=SPEC",
        help="axis as namespace.field=low:high[:points] or =v1,v2,... "
        "(repeatable; default: the ScenarioVariation sampling ranges)",
    )
    sweep.add_argument("--jobs", dest="sub_jobs", type=int, default=0,
                       help="worker processes (0/1 serial, -1 all CPUs)")
    sweep.add_argument("--engine", dest="sub_engine", default="scalar",
                       choices=("scalar", "batch"),
                       help="simulation engine per sweep point (bit-identical)")
    sweep.add_argument("--batch-size", dest="sub_batch_size", type=int, default=16,
                       help="lockstep runs per work item when --engine batch")
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded sweep points without executing them",
    )

    train = subparsers.add_parser(
        "train",
        help="collect, train, and persist the safety-hijacker oracle",
        description=(
            "Run the end-to-end training pipeline for one (scenario, vector) "
            "pair: fan the scripted-attack collection grid out over worker "
            "processes (resumable via the store's dataset records), train the "
            "paper's 100-100-50 oracle, and publish it into the store's "
            "content-addressed model registry for later campaigns to load."
        ),
    )
    train.add_argument("--scenario", dest="sub_scenario", required=True,
                       help="scenario id to train for")
    train.add_argument("--vector", dest="sub_vector", required=True,
                       help="attack vector (disappear, move_out, move_in)")
    train.add_argument("--store", dest="sub_store", required=True,
                       help="experiment-store root (datasets + model registry)")
    train.add_argument("--seed", dest="sub_seed", type=int, default=7,
                       help="root seed of the collection grid (and of training)")
    train.add_argument("--repeats", type=int, default=2,
                       help="simulations per (delta_inject, k) grid point")
    train.add_argument("--epochs", type=int, default=200,
                       help="training epochs")
    train.add_argument("--learning-rate", type=float, default=1e-3,
                       help="Adam learning rate")
    train.add_argument("--jobs", dest="sub_jobs", type=int, default=0,
                       help="worker processes for collection (0/1 serial, -1 all CPUs)")
    train.add_argument(
        "--force",
        action="store_true",
        help="retrain even when the spec is already registered in the store",
    )

    resume = subparsers.add_parser(
        "resume",
        help="finish every interrupted campaign recorded in an experiment store",
        description=(
            "Scan the store manifests for campaigns with missing run indices, "
            "execute only the missing runs, and print the merged summaries — "
            "bit-identical to campaigns that were never interrupted."
        ),
    )
    resume.add_argument("--store", dest="sub_store", required=True,
                       help="experiment-store root")
    resume.add_argument("--jobs", dest="sub_jobs", type=int, default=0,
                       help="worker processes (0/1 serial, -1 all CPUs)")
    resume.add_argument("--engine", dest="sub_engine", default="scalar",
                        choices=("scalar", "batch"),
                        help="simulation engine for the missing runs (records "
                        "are engine-independent, so mixing is safe)")
    resume.add_argument("--batch-size", dest="sub_batch_size", type=int, default=16,
                        help="lockstep runs per work item when --engine batch")
    resume.add_argument("--fusion", dest="sub_fusion", default=None,
                        help="only resume campaigns whose effective fusion "
                        "policy matches (stored configs without a fusion "
                        "override count as 'late')")

    search = subparsers.add_parser(
        "search",
        help="adaptively search the parameter space for attack-success regions",
        description=(
            "Closed-loop falsification: an adaptive sampler (cross-entropy, "
            "bandit, or random) proposes batches of sweep points, the "
            "campaign runtime executes them into the store, an objective "
            "scores the recorded outcomes, and the scores steer the next "
            "batch toward the attack-success boundary.  The search "
            "checkpoints its sampler state in the store every iteration, so "
            "re-running the same command after a crash (even SIGKILL) "
            "resumes mid-iteration without re-proposing."
        ),
    )
    search.add_argument("--scenario", dest="sub_scenario", required=True,
                        help="scenario id to search")
    search.add_argument("--store", dest="sub_store", required=True,
                        help="experiment-store root (runs, checkpoints, report)")
    search.add_argument("--attacker", dest="sub_attacker", default="robotack",
                        help="attacker kind for every search point")
    search.add_argument("--vector", dest="sub_vector", default=None,
                        help="attack vector (robotack modes)")
    search.add_argument("--predictor", dest="sub_predictor", default="neural",
                        help="safety oracle kind")
    search.add_argument("--fusion", dest="sub_fusion", default=None,
                        help="fusion-policy victim variant for every point")
    search.add_argument("--runs", dest="sub_runs", type=int, default=3,
                        help="runs per search point (the per-point sample size)")
    search.add_argument("--seed", dest="sub_seed", type=int, default=2020,
                        help="root seed per campaign")
    search.add_argument(
        "--sampler", default="ce",
        help="adaptive sampler: ce (cross-entropy), ucb / thompson "
        "(bandit over the discrete axes), random (baseline)",
    )
    search.add_argument(
        "--objective", default="attack_success",
        help="falsification objective: attack_success, time_to_violation, "
        "min_delta_margin",
    )
    search.add_argument(
        "--budget", type=int, default=300,
        help="total simulation-run budget across all iterations",
    )
    search.add_argument(
        "--batch-points", type=int, default=8,
        help="search points proposed per iteration",
    )
    search.add_argument(
        "--search-seed", type=int, default=0,
        help="seed of the adaptive sampler itself",
    )
    search.add_argument(
        "--target", type=float, default=None,
        help="stop early once any point's objective score reaches this "
        "value (in [0, 1])",
    )
    search.add_argument(
        "--max-iterations", type=int, default=None,
        help="cap the iterations executed by this invocation (resume later)",
    )
    search.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="PATH=SPEC",
        help="axis as namespace.field=low:high[:points] or =v1,v2,... "
        "(repeatable; default: the ScenarioVariation sampling ranges)",
    )
    search.add_argument("--jobs", dest="sub_jobs", type=int, default=0,
                        help="worker processes (0/1 serial, -1 all CPUs)")
    search.add_argument("--engine", dest="sub_engine", default="scalar",
                        choices=("scalar", "batch"),
                        help="simulation engine per search point (bit-identical)")
    search.add_argument("--batch-size", dest="sub_batch_size", type=int, default=16,
                        help="lockstep runs per work item when --engine batch")
    return parser


def _adopt_subcommand_args(args: argparse.Namespace) -> None:
    """Reject pre-subcommand top-level flags, then canonicalize ``sub_*`` dests.

    ``repro-campaign --runs 5 sweep ...`` is ambiguous (argparse would let the
    sweep's own ``--runs`` default win silently); fail loudly and tell the
    user where the flag belongs — even when the typed value equals the
    default (the tracked actions record what was actually provided).  Flags
    the subcommand does not declare at all (e.g. ``--cache-dir``) are
    rejected for the same reason.
    """
    provided = sorted(getattr(args, "_provided", set()))
    if provided:
        flags = ", ".join("--" + name.replace("_", "-") for name in provided)
        raise SystemExit(
            f"{flags}: pass options after the {args.command!r} subcommand "
            f"(e.g. repro-campaign {args.command} {flags.split(',')[0]} ...)"
        )
    for name in ("scenario", "store", "attacker", "vector", "predictor",
                 "fusion", "runs", "seed", "jobs", "engine", "batch_size"):
        if hasattr(args, "sub_" + name):
            setattr(args, name, getattr(args, "sub_" + name))


def _print_scenarios() -> None:
    from repro.sim.scenarios import scenario_catalog

    print("Registered driving scenarios:")
    for scenario_id, description in scenario_catalog().items():
        print(f"  {scenario_id:<6s} {description}")


def _parse_fusion(args: argparse.Namespace):
    """Convert ``--fusion POLICY`` into a FusionConfig (or None when unset)."""
    from repro.perception.fusion import FusionConfig, list_fusion_policies

    if args.fusion is None:
        return None
    if args.fusion not in list_fusion_policies():
        raise SystemExit(
            f"unknown fusion policy {args.fusion!r}; "
            f"choose from {list_fusion_policies()}"
        )
    return FusionConfig(policy=args.fusion)


def _run_table2_suite(args: argparse.Namespace) -> None:
    import dataclasses

    from repro.experiments.campaign import (
        baseline_random_campaign,
        run_campaigns,
        standard_campaigns,
    )
    from repro.experiments.metrics import summarize_campaign
    from repro.experiments.tables import headline_findings

    configs = list(standard_campaigns(n_runs=args.runs, seed=args.seed))
    configs.append(baseline_random_campaign(n_runs=args.runs, seed=args.seed))
    fusion = _parse_fusion(args)
    if fusion is not None:
        configs = [dataclasses.replace(config, fusion=fusion) for config in configs]
    print(
        f"Running {len(configs)} campaigns x {args.runs} runs "
        f"(jobs={args.jobs}, seed={args.seed}) ..."
    )
    results = run_campaigns(
        configs,
        use_cache=not args.no_cache,
        executor=args.jobs,
        store=args.store,
        engine=args.engine,
        batch_size=args.batch_size,
    )
    print("\n=== Table II (reproduced) ===")
    for campaign in results:
        print(summarize_campaign(campaign).format_row())
    findings = headline_findings(results[:-1], results[-1])
    print("\n=== Headline findings (paper §I) ===")
    print(f"RoboTack EB rate      : {findings['robotack_eb_rate']:.1%} (paper 75.2%)")
    print(f"RoboTack crash rate   : {findings['robotack_crash_rate']:.1%} (paper 52.6%)")
    print(f"Random baseline EB    : {findings['random_eb_rate']:.1%} (paper 2.3%)")
    print(
        f"Pedestrians vs vehicles: {findings['pedestrian_success_rate']:.1%} "
        f"vs {findings['vehicle_success_rate']:.1%} (paper 84.1% vs 31.7%)"
    )


def _parse_campaign_kinds(args: argparse.Namespace):
    """Validate/convert the (scenario, attacker, vector, predictor) flags."""
    from repro.core.attack_vectors import AttackVector
    from repro.experiments.campaign import AttackerKind, PredictorKind
    from repro.sim.scenarios import list_scenario_ids

    if args.scenario not in list_scenario_ids():
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; available: {list_scenario_ids()}"
        )
    try:
        attacker = AttackerKind(args.attacker)
    except ValueError:
        raise SystemExit(
            f"unknown attacker {args.attacker!r}; "
            f"choose from {[kind.value for kind in AttackerKind]}"
        ) from None
    vector = None
    if args.vector is not None:
        try:
            vector = AttackVector.from_string(args.vector)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    try:
        predictor = PredictorKind(args.predictor)
    except ValueError:
        raise SystemExit(
            f"unknown predictor {args.predictor!r}; "
            f"choose from {[kind.value for kind in PredictorKind]}"
        ) from None
    if vector is None and attacker in (AttackerKind.ROBOTACK, AttackerKind.ROBOTACK_NO_SH):
        raise SystemExit(
            f"attacker {attacker.value!r} needs an attack vector; pass "
            f"--vector {{{', '.join(v.name.lower() for v in AttackVector)}}}"
        )
    return attacker, vector, predictor


def _run_single_campaign(args: argparse.Namespace) -> None:
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.experiments.metrics import summarize_campaign

    attacker, vector, predictor = _parse_campaign_kinds(args)
    fusion = _parse_fusion(args)
    vector_label = vector.name.title() if vector is not None else attacker.value.title()
    config = CampaignConfig(
        campaign_id=f"{args.scenario}-{vector_label}-cli",
        scenario_id=args.scenario,
        attacker=attacker,
        vector=vector,
        n_runs=args.runs,
        seed=args.seed,
        predictor=predictor,
        fusion=fusion,
    )
    print(f"Running {config.campaign_id}: {args.runs} runs (jobs={args.jobs}) ...")
    result = run_campaign(
        config,
        use_cache=not args.no_cache,
        executor=args.jobs,
        store=args.store,
        engine=args.engine,
        batch_size=args.batch_size,
    )
    print(summarize_campaign(result).format_row())


def _run_sweep(args: argparse.Namespace) -> None:
    from repro.experiments.campaign import CampaignConfig, run_campaigns
    from repro.experiments.metrics import summarize_campaign
    from repro.sim.sweeps import ParameterSpace, parse_axis, sweep_campaigns

    attacker, vector, predictor = _parse_campaign_kinds(args)
    fusion = _parse_fusion(args)
    space = None
    if args.param:
        try:
            space = ParameterSpace(dict(parse_axis(axis) for axis in args.param))
        except ValueError as error:
            raise SystemExit(str(error)) from None
    vector_label = vector.name.title() if vector is not None else attacker.value.title()
    base = CampaignConfig(
        campaign_id=f"{args.scenario}-{vector_label}-sweep",
        scenario_id=args.scenario,
        attacker=attacker,
        vector=vector,
        n_runs=args.runs,
        seed=args.seed,
        predictor=predictor,
        fusion=fusion,
    )
    try:
        configs = sweep_campaigns(
            base, space, sampler=args.sampler, n=args.n, seed=args.sweep_seed
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.dry_run:
        print(f"Sweep of {len(configs)} points ({args.sampler}):")
        for config in configs:
            print(f"  {config.campaign_id}")
        return
    print(
        f"Sweeping {len(configs)} points x {args.runs} runs "
        f"({args.sampler}, jobs={args.jobs}) into {args.store} ..."
    )
    results = run_campaigns(
        configs,
        executor=args.jobs,
        store=args.store,
        engine=args.engine,
        batch_size=args.batch_size,
    )
    for result in results:
        print(summarize_campaign(result).format_row())


def _run_search(args: argparse.Namespace) -> None:
    from repro.experiments.campaign import CampaignConfig
    from repro.experiments.store import ExperimentStore
    from repro.experiments.tables import search_report_from_store
    from repro.search import (
        FalsificationLoop,
        SearchSpec,
        list_objectives,
        list_search_samplers,
    )
    from repro.sim.sweeps import ParameterSpace, default_variation_space, parse_axis

    attacker, vector, predictor = _parse_campaign_kinds(args)
    fusion = _parse_fusion(args)
    if args.sampler not in list_search_samplers():
        raise SystemExit(
            f"unknown search sampler {args.sampler!r}; "
            f"choose from {list_search_samplers()}"
        )
    if args.objective not in list_objectives():
        raise SystemExit(
            f"unknown objective {args.objective!r}; "
            f"choose from {list_objectives()}"
        )
    if args.param:
        try:
            space = ParameterSpace(dict(parse_axis(axis) for axis in args.param))
        except ValueError as error:
            raise SystemExit(str(error)) from None
    else:
        space = default_variation_space()
    vector_label = vector.name.title() if vector is not None else attacker.value.title()
    base = CampaignConfig(
        campaign_id=f"{args.scenario}-{vector_label}-search",
        scenario_id=args.scenario,
        attacker=attacker,
        vector=vector,
        n_runs=args.runs,
        seed=args.seed,
        predictor=predictor,
        fusion=fusion,
    )
    try:
        spec = SearchSpec(
            base=base,
            space=space,
            sampler=args.sampler,
            objective=args.objective,
            budget_runs=args.budget,
            batch_points=args.batch_points,
            seed=args.search_seed,
            target_score=args.target,
        )
        loop = FalsificationLoop(
            spec,
            ExperimentStore(args.store),
            executor=args.jobs,
            engine=args.engine,
            batch_size=args.batch_size,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    resuming = loop.store.load_search_state(loop.search_hash) is not None
    print(
        f"{'Resuming' if resuming else 'Starting'} search {loop.search_hash[:12]}: "
        f"{args.sampler}/{args.objective} over {len(space)} axes, "
        f"budget {args.budget} runs ({args.batch_points} points x {args.runs} "
        f"runs per iteration, jobs={args.jobs}) into {args.store} ..."
    )
    result = loop.run(max_iterations=args.max_iterations)
    print(f"\n=== Search report ({loop.search_hash[:12]}) ===")
    print("iter points runs_spent    elite     best  best-so-far")
    for row in search_report_from_store(loop.store, loop.search_hash):
        print(row.format_row())
    print(
        f"\nBest score {result.best_score:.3f} "
        f"({args.objective}) after {result.runs_spent} runs"
        + (" — target reached" if result.reached_target else "")
    )
    if result.best_assignment:
        print("Best assignment:")
        for path, value in sorted(result.best_assignment.items()):
            print(f"  {path} = {value}")
    if result.elite_front:
        print("Elite front (last iteration):")
        for point in result.elite_front:
            rendered = ", ".join(
                f"{path}={value}" for path, value in sorted(point.assignment.items())
            )
            print(f"  score {point.score:.3f}: {rendered}")


def _loss_curve_report(train_loss: List[float], validation_loss: List[float]) -> str:
    """A compact per-epoch loss table (first epoch, ~10 waypoints, last epoch)."""
    n_epochs = len(train_loss)
    step = max(1, n_epochs // 10)
    picked = sorted(set(range(0, n_epochs, step)) | {n_epochs - 1})
    lines = ["  epoch   train loss   validation loss"]
    for epoch in picked:
        lines.append(
            f"  {epoch + 1:>5d}   {train_loss[epoch]:>10.4f}   {validation_loss[epoch]:>15.4f}"
        )
    return "\n".join(lines)


def _run_train(args: argparse.Namespace) -> None:
    from repro.core.attack_vectors import AttackVector
    from repro.core.training import train_and_register_predictor, training_spec_hash
    from repro.experiments.campaign import training_grid_for
    from repro.experiments.store import ExperimentStore
    from repro.sim.scenarios import list_scenario_ids

    if args.scenario not in list_scenario_ids():
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; available: {list_scenario_ids()}"
        )
    try:
        vector = AttackVector.from_string(args.vector)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    store = ExperimentStore(args.store)
    if args.repeats != 2 or args.learning_rate != 1e-3:
        # Campaign lookups hash the spec with the fixed campaign-side
        # collection parameters; a model trained off those defaults is still
        # registered and loadable by hash, but won't be auto-loaded.
        print(
            "note: campaigns look up oracles with repeats=2 and "
            "learning-rate=1e-3; this model will not be auto-loaded by "
            "`repro-campaign --store` runs."
        )
    delta_grid, k_grid = training_grid_for(args.scenario)
    spec_hash = training_spec_hash(
        args.scenario, vector, delta_grid, k_grid,
        collect_seed=args.seed, repeats=args.repeats, epochs=args.epochs,
        learning_rate=args.learning_rate,
    )
    if not args.force:
        # Existence check only — don't deserialize the weights just to
        # discard them; the report below comes from the registry metadata.
        model_hash = store.resolve_model_spec(spec_hash)
        if model_hash is not None and store.has_model(model_hash):
            metadata = store.load_model_metadata(model_hash)
            print(
                f"Already trained: {args.scenario}/{vector.name} is registered as "
                f"model {model_hash[:12]} ({metadata['n_samples']} samples, "
                f"{metadata['epochs']} epochs); pass --force to retrain."
            )
            print(_loss_curve_report(metadata["train_loss"], metadata["validation_loss"]))
            return
    n_points = len(delta_grid) * len(k_grid) * args.repeats
    print(
        f"Collecting {n_points} scripted-attack grid points for "
        f"{args.scenario}/{vector.name} (jobs={args.jobs}, seed={args.seed}) "
        f"into {args.store} ..."
    )
    artifact = train_and_register_predictor(
        args.scenario, vector, delta_grid, k_grid,
        seed=args.seed, repeats=args.repeats, epochs=args.epochs,
        learning_rate=args.learning_rate, executor=args.jobs, store=store,
    )
    history = artifact.training.history
    print(
        f"Collected {artifact.dataset.n_samples} samples "
        f"(dataset {artifact.dataset_hash[:12]}); trained "
        f"{artifact.predictor.network.num_parameters()} parameters for "
        f"{args.epochs} epochs ({artifact.training.n_train_samples}/"
        f"{artifact.training.n_validation_samples} train/validation split)."
    )
    print(_loss_curve_report(history.train_loss, history.validation_loss))
    print(f"Registered model {artifact.model_hash[:12]} at {artifact.model_dir}")
    print(
        f"Campaigns against this store now load the pretrained oracle, e.g.\n"
        f"  repro-campaign --scenario {args.scenario} --attacker robotack "
        f"--vector {vector.name.lower()} --store {args.store}"
    )


def _run_resume(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.experiments.campaign import run_campaign
    from repro.experiments.metrics import summarize_campaign
    from repro.experiments.store import ExperimentStore
    from repro.runtime.executor import resolve_executor

    if not Path(args.store).expanduser().is_dir():
        # A mistyped path must not masquerade as "every campaign complete".
        raise SystemExit(f"no experiment store at {args.store!r} (directory not found)")
    store = ExperimentStore(args.store)
    worklist = store.incomplete_campaigns()
    if args.fusion is not None:
        from repro.perception.fusion import list_fusion_policies

        if args.fusion not in list_fusion_policies():
            raise SystemExit(
                f"unknown fusion policy {args.fusion!r}; "
                f"choose from {list_fusion_policies()}"
            )
        worklist = [
            (config, missing)
            for config, missing in worklist
            if config.fusion_policy == args.fusion
        ]
        if not worklist:
            print(
                f"Nothing to resume: no incomplete campaign in {args.store} "
                f"runs the {args.fusion!r} fusion policy."
            )
            return
    if not worklist:
        print(f"Nothing to resume: every campaign in {args.store} is complete.")
        return
    executor = resolve_executor(args.jobs)
    try:
        for config, missing in worklist:
            print(
                f"Resuming {config.campaign_id}: "
                f"{len(missing)} of {config.n_runs} runs missing ..."
            )
            result = run_campaign(
                config,
                executor=executor,
                store=store,
                engine=args.engine,
                batch_size=args.batch_size,
            )
            print(summarize_campaign(result).format_row())
    finally:
        executor.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)

    if args.command is not None:
        _adopt_subcommand_args(args)

    if args.runs < 1:
        raise SystemExit("--runs must be a positive number of simulation runs")
    if args.jobs < -1:
        raise SystemExit("--jobs must be -1 (all CPUs), 0/1 (serial), or a worker count")
    if args.batch_size < 1:
        raise SystemExit("--batch-size must be a positive number of lockstep runs")

    if args.list_scenarios:
        _print_scenarios()
        return 0

    if args.cache_dir:
        from repro.experiments.campaign import set_cache_dir

        set_cache_dir(args.cache_dir)

    if args.command == "sweep":
        _run_sweep(args)
    elif args.command == "train":
        _run_train(args)
    elif args.command == "resume":
        _run_resume(args)
    elif args.command == "search":
        _run_search(args)
    elif args.scenario is not None:
        _run_single_campaign(args)
    else:
        _run_table2_suite(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

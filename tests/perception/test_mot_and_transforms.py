"""Tests for the multi-object tracker and the image-to-world transformation."""

import numpy as np
import pytest

from repro.geometry import BoundingBox, CameraProjection
from repro.perception.detection import Detection
from repro.perception.mot import MultiObjectTracker, TrackerConfig
from repro.perception.tracker import ObjectTrack
from repro.perception.transforms import ImageToWorldTransform
from repro.sim.actors import ActorKind


def det(cx, cy=500.0, w=60.0, h=45.0, kind=ActorKind.VEHICLE, actor_id=1, confidence=0.9):
    return Detection(kind=kind, bbox=BoundingBox(cx, cy, w, h), confidence=confidence, actor_id=actor_id)


class TestObjectTrack:
    def test_initial_state(self):
        track = ObjectTrack(1, det(100))
        assert track.hits == 1
        assert track.consecutive_misses == 0
        assert not track.is_confirmed(min_hits=2)

    def test_update_confirms_and_resets_misses(self):
        track = ObjectTrack(1, det(100))
        track.predict()
        track.mark_missed()
        track.update(det(102))
        assert track.hits == 2
        assert track.consecutive_misses == 0
        assert track.is_confirmed(min_hits=2)


class TestMultiObjectTracker:
    def test_single_object_keeps_one_track(self):
        tracker = MultiObjectTracker()
        for step in range(10):
            tracks = tracker.step([det(100 + 2 * step)])
        assert len(tracker.tracks) == 1
        assert len(tracks) == 1

    def test_track_id_stable_under_small_motion_and_noise(self):
        tracker = MultiObjectTracker()
        rng = np.random.default_rng(0)
        first_tracks = tracker.step([det(100)])
        tracker.step([det(100)])
        track_id = tracker.step([det(100)])[0].track_id
        for step in range(30):
            cx = 100 + 3 * step + rng.normal(0, 2.0)
            tracks = tracker.step([det(cx)])
            assert tracks[0].track_id == track_id
        assert first_tracks == [] or first_tracks[0].track_id == track_id

    def test_two_objects_tracked_separately(self):
        tracker = MultiObjectTracker()
        for step in range(8):
            tracks = tracker.step([det(100 + step, actor_id=1), det(800 - step, actor_id=2)])
        assert len(tracks) == 2
        assert {t.actor_id for t in tracks} == {1, 2}

    def test_track_retired_after_max_misses(self):
        config = TrackerConfig(max_consecutive_misses=3)
        tracker = MultiObjectTracker(config)
        for _ in range(3):
            tracker.step([det(100)])
        assert len(tracker.tracks) == 1
        for _ in range(config.max_consecutive_misses + 2):
            tracker.step([])
        assert len(tracker.tracks) == 0

    def test_unmatched_detection_spawns_new_track(self):
        tracker = MultiObjectTracker()
        tracker.step([det(100)])
        tracker.step([det(100), det(1500, actor_id=2)])
        assert len(tracker.tracks) == 2

    def test_confirmation_threshold(self):
        tracker = MultiObjectTracker(TrackerConfig(min_hits_to_confirm=3))
        assert tracker.step([det(100)]) == []
        assert tracker.step([det(101)]) == []
        assert len(tracker.step([det(102)])) == 1

    def test_size_inconsistent_detection_not_matched(self):
        tracker = MultiObjectTracker()
        for _ in range(3):
            tracker.step([det(100, w=60, h=45)])
        # A detection ten times larger at the same place is a different object.
        tracker.step([det(100, w=600, h=450, actor_id=2)])
        assert len(tracker.tracks) == 2

    def test_track_for_actor_lookup(self):
        tracker = MultiObjectTracker()
        tracker.step([det(100, actor_id=42)])
        assert tracker.track_for_actor(42) is not None
        assert tracker.track_for_actor(7) is None

    def test_reset(self):
        tracker = MultiObjectTracker()
        tracker.step([det(100)])
        tracker.reset()
        assert tracker.tracks == {}

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrackerConfig(min_iou_for_match=1.5)
        with pytest.raises(ValueError):
            TrackerConfig(max_consecutive_misses=0)
        with pytest.raises(ValueError):
            TrackerConfig(center_distance_gate=0.0)


class TestImageToWorldTransform:
    def _tracked_object_at(self, distance, lateral, kind=ActorKind.VEHICLE, steps=6, lateral_speed=0.0):
        """Build a track by feeding projected detections of a moving object."""
        projection = CameraProjection()
        transform = ImageToWorldTransform(projection=projection, frame_dt_s=1.0 / 15.0)
        tracker = MultiObjectTracker()
        height = 1.6 if kind is ActorKind.VEHICLE else 1.7
        estimates = []
        for step in range(steps):
            current_lateral = lateral + lateral_speed * step / 15.0
            bbox = projection.project(distance, current_lateral, 1.9, height)
            tracks = tracker.step([Detection(kind, bbox, 0.9, actor_id=1)])
            estimates = transform.transform(tracks)
        return estimates

    def test_recovers_distance_and_lateral(self):
        estimates = self._tracked_object_at(30.0, -2.0)
        assert len(estimates) == 1
        assert estimates[0].distance_m == pytest.approx(30.0, rel=0.05)
        assert estimates[0].lateral_m == pytest.approx(-2.0, rel=0.1)

    def test_lateral_velocity_estimated(self):
        estimates = self._tracked_object_at(30.0, -3.0, lateral_speed=1.5, steps=30)
        assert estimates[0].lateral_velocity_mps == pytest.approx(1.5, abs=0.7)

    def test_stationary_object_has_small_lateral_velocity(self):
        estimates = self._tracked_object_at(30.0, -3.0, steps=30)
        assert abs(estimates[0].lateral_velocity_mps) < 0.3

    def test_estimates_sorted_by_distance(self):
        projection = CameraProjection()
        transform = ImageToWorldTransform(projection=projection)
        tracker = MultiObjectTracker()
        detections = [
            Detection(ActorKind.VEHICLE, projection.project(50.0, 0.0, 1.9, 1.6), 0.9, 1),
            Detection(ActorKind.VEHICLE, projection.project(20.0, 3.0, 1.9, 1.6), 0.9, 2),
        ]
        for _ in range(4):
            tracks = tracker.step(detections)
        estimates = transform.transform(tracks)
        distances = [e.distance_m for e in estimates]
        assert distances == sorted(distances)

    def test_history_dropped_for_dead_tracks(self):
        transform = ImageToWorldTransform()
        tracker = MultiObjectTracker()
        for _ in range(4):
            tracks = tracker.step([det(960)])
        transform.transform(tracks)
        assert transform._history
        transform.transform([])
        assert not transform._history

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ImageToWorldTransform(frame_dt_s=0.0)
        with pytest.raises(ValueError):
            ImageToWorldTransform(velocity_smoothing=0.0)

"""Paper Fig. 8: safety-hijacker (NN) prediction quality and its impact.

Panel (a): probability of attack success versus the binned absolute error of
the NN's safety-potential prediction — success probability should fall as the
prediction error grows.
Panel (b): predicted versus ground-truth safety potential after k attack
frames for the DS-1 Move_Out oracle.
"""

import numpy as np
import pytest

from repro.core.attack_vectors import AttackVector
from repro.core.training import collect_safety_dataset
from repro.experiments.campaign import PredictorKind, get_or_train_predictor
from repro.experiments.figures import fig8_data

from .conftest import BENCH_SEED


@pytest.fixture(scope="module")
def ds1_move_out_oracle():
    """The trained NN oracle for DS-1 Move_Out plus a held-out evaluation dataset."""
    predictor = get_or_train_predictor(
        "DS-1", AttackVector.MOVE_OUT, kind=PredictorKind.NEURAL, seed=7
    )
    evaluation = collect_safety_dataset(
        scenario_id="DS-1",
        vector=AttackVector.MOVE_OUT,
        delta_inject_values=(24.0, 18.0, 14.0),
        k_values=(20, 40, 58),
        seed=BENCH_SEED + 1,
    )
    return predictor, evaluation


def test_fig8_safety_hijacker_prediction_quality(benchmark, robotack_campaigns, ds1_move_out_oracle):
    predictor, evaluation = ds1_move_out_oracle
    data = benchmark.pedantic(
        fig8_data,
        args=(robotack_campaigns,),
        kwargs={"predictor": predictor, "dataset": evaluation},
        rounds=1,
        iterations=1,
    )

    print("\n=== Fig. 8a: attack success probability vs NN prediction error ===")
    for center, success, count in data.binned_success:
        print(f"|error| ~ {center:5.2f} m : success probability {success:5.1%}  (n={count})")
    print(f"mean absolute prediction error over attacked runs: {data.mean_absolute_error_m:.2f} m")

    print("\n=== Fig. 8b: DS-1 Move_Out oracle, predicted vs ground-truth delta ===")
    print(f"{'k':>4s} {'ground truth':>13s} {'predicted':>10s}")
    for k, truth, predicted in data.prediction_curve:
        print(f"{k:4d} {truth:13.1f} {predicted:10.1f}")

    # Shape checks: the oracle error is bounded (paper: within ~5 m for
    # vehicles, ~1.5 m for pedestrians), and the predicted curve decreases with
    # the attack window length like the ground truth does.
    curve_errors = [abs(truth - predicted) for _, truth, predicted in data.prediction_curve]
    assert np.mean(curve_errors) < 8.0
    ks = np.array([k for k, _, _ in data.prediction_curve], dtype=float)
    predictions = np.array([p for _, _, p in data.prediction_curve])
    truths = np.array([t for _, t, _ in data.prediction_curve])
    if len(ks) >= 4 and np.std(ks) > 0:
        assert np.corrcoef(ks, predictions)[0, 1] < 0.1
        assert np.corrcoef(predictions, truths)[0, 1] > 0.5
    # Panel (a) exists whenever some attacked runs carry NN predictions.
    assert data.binned_success
